package rtl

import (
	"reflect"
	"testing"

	"gpufi/internal/faults"
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
	"gpufi/internal/stats"
)

// snapshotProg builds a kernel long enough to exercise every pipeline
// phase across several warps, including divergence (so mid-pipeline
// snapshots cover the SIMT stack) and an SFU instruction (so they cover
// the SFU controller mid-sequence).
func snapshotProg(t *testing.T) *kasm.Program {
	t.Helper()
	b := kasm.New("snapshot")
	b.S2R(rTid, isa.SRTid)
	b.Gld(rA, rTid, 0)
	b.Gld(rB, rTid, 64)
	b.Emit(isa.Instr{Op: isa.OpFMUL, Guard: isa.PredTrue, Dst: rTmp, SrcA: rA, SrcB: rB, SrcC: isa.RZ})
	b.Emit(isa.Instr{Op: isa.OpFSIN, Guard: isa.PredTrue, Dst: rC, SrcA: rA, SrcB: isa.RZ, SrcC: isa.RZ})
	b.ISetPI(isa.P(0), isa.CmpLT, rTid, 32)
	b.IfElse(isa.P(0),
		func() { b.Emit(isa.Instr{Op: isa.OpFADD, Guard: isa.PredTrue, Dst: rTmp, SrcA: rTmp, SrcB: rC, SrcC: isa.RZ}) },
		func() { b.Emit(isa.Instr{Op: isa.OpIADD, Guard: isa.PredTrue, Dst: rTmp, SrcA: rTmp, SrcB: rTid, SrcC: isa.RZ}) },
	)
	b.Gst(rTid, 128, rTmp)
	b.Gst(rTid, 192, rC)
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func snapshotInputs() []uint32 {
	g := make([]uint32, 256)
	for i := 0; i < 64; i++ {
		g[i] = f32(0.02 + float32(i)*0.02)
		g[64+i] = f32(1.5 - float32(i)*0.01)
	}
	return g
}

// TestSnapshotRestoreRoundTrip: restoring a mid-pipeline snapshot into a
// different machine and re-capturing it must reproduce the snapshot
// exactly, for checkpoints spread across the whole run.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	prog := snapshotProg(t)
	m := New()
	var snaps []*Snapshot
	if err := m.RunCheckpointed(prog, 1, 64, snapshotInputs(), 0, testMaxCycles, 7, func(s *Snapshot) {
		snaps = append(snaps, s)
	}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 10 {
		t.Fatalf("only %d snapshots captured", len(snaps))
	}
	other := New()
	// Dirty the target machine first so the round-trip proves Restore
	// overwrites everything, not just what the snapshot run touched.
	dirty := snapshotInputs()
	if err := other.Run(prog, 1, 64, dirty, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		other.Restore(s)
		got := other.Snapshot()
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("snapshot %d (cycle %d): round-trip mismatch", i, s.Cycle())
		}
	}
}

// TestRunFromFaultFree: resuming any golden checkpoint without a fault
// must finish with the same cycle count and memory image as the
// uninterrupted run.
func TestRunFromFaultFree(t *testing.T) {
	prog := snapshotProg(t)
	golden := snapshotInputs()
	m := New()
	if err := m.Run(prog, 1, 64, golden, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	goldenCycles := m.Cycles()

	var snaps []*Snapshot
	if err := m.RunCheckpointed(prog, 1, 64, snapshotInputs(), 0, testMaxCycles, 11, func(s *Snapshot) {
		snaps = append(snaps, s)
	}); err != nil {
		t.Fatal(err)
	}
	worker := New()
	for i, s := range snaps {
		if err := worker.RunFrom(s, testMaxCycles); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if worker.Cycles() != goldenCycles {
			t.Fatalf("snapshot %d: resumed run took %d cycles, full run %d", i, worker.Cycles(), goldenCycles)
		}
		out := worker.Global()
		for w := range out {
			if out[w] != golden[w] {
				t.Fatalf("snapshot %d: word %d = %#x, golden %#x", i, w, out[w], golden[w])
			}
		}
	}
}

// TestRunFromFaultBitIdentical: for faults across modules and cycles, a
// checkpointed resume must end in exactly the state a full faulty replay
// reaches — same error, same cycle count, same memory image.
func TestRunFromFaultBitIdentical(t *testing.T) {
	prog := snapshotProg(t)
	m := New()
	golden := snapshotInputs()
	if err := m.Run(prog, 1, 64, golden, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	goldenCycles := m.Cycles()

	var snaps []*Snapshot
	if err := m.RunCheckpointed(prog, 1, 64, snapshotInputs(), 0, testMaxCycles, 13, func(s *Snapshot) {
		snaps = append(snaps, s)
	}); err != nil {
		t.Fatal(err)
	}
	latest := func(cycle uint64) *Snapshot {
		var best *Snapshot
		for _, s := range snaps {
			if s.Cycle() <= cycle {
				best = s
			}
		}
		return best
	}

	r := stats.NewRNG(4242)
	full, ff := New(), New()
	budget := goldenCycles*10 + 1000
	for trial := 0; trial < 200; trial++ {
		mod := faults.AllModules()[r.Intn(len(faults.AllModules()))]
		f := Fault{
			Module: mod,
			Bit:    r.Intn(ModuleBits(mod)),
			Cycle:  uint64(r.Intn(int(goldenCycles))),
		}

		gFull := snapshotInputs()
		full.Inject(f)
		errFull := full.Run(prog, 1, 64, gFull, 0, budget)

		snap := latest(f.Cycle)
		if snap == nil {
			t.Fatalf("no snapshot at or before cycle %d", f.Cycle)
		}
		ff.Inject(f)
		errFF := ff.RunFrom(snap, budget)

		if (errFull == nil) != (errFF == nil) || (errFull != nil && errFull.Error() != errFF.Error()) {
			t.Fatalf("fault %+v: full err %v, fast-forward err %v", f, errFull, errFF)
		}
		if full.Cycles() != ff.Cycles() {
			t.Fatalf("fault %+v: full %d cycles, fast-forward %d", f, full.Cycles(), ff.Cycles())
		}
		gFF := ff.Global()
		for w := range gFull {
			if gFull[w] != gFF[w] {
				t.Fatalf("fault %+v: word %d full=%#x fast-forward=%#x", f, w, gFull[w], gFF[w])
			}
		}
	}
}

// TestRunFromPrunedBitIdentical: golden-reconvergence pruning may stop a
// faulty run early ONLY when the remaining tail provably replays the
// golden run — a pruned result must mean the full replay ends with the
// golden memory image, the golden cycle count and no error.
func TestRunFromPrunedBitIdentical(t *testing.T) {
	prog := snapshotProg(t)
	m := New()
	golden := snapshotInputs()
	if err := m.Run(prog, 1, 64, golden, 0, testMaxCycles); err != nil {
		t.Fatal(err)
	}
	goldenCycles := m.Cycles()

	const every = 13
	var snaps []*Snapshot
	if err := m.RunCheckpointed(prog, 1, 64, snapshotInputs(), 0, testMaxCycles, every, func(s *Snapshot) {
		snaps = append(snaps, s)
	}); err != nil {
		t.Fatal(err)
	}
	at := func(cycle uint64) *Snapshot {
		for _, s := range snaps {
			if s.Cycle() == cycle {
				return s
			}
		}
		return nil
	}
	latest := func(cycle uint64) *Snapshot {
		var best *Snapshot
		for _, s := range snaps {
			if s.Cycle() <= cycle {
				best = s
			}
		}
		return best
	}

	r := stats.NewRNG(1717)
	full, ff := New(), New()
	budget := goldenCycles*10 + 1000
	prunes := 0
	for trial := 0; trial < 300; trial++ {
		mod := faults.AllModules()[r.Intn(len(faults.AllModules()))]
		f := Fault{
			Module: mod,
			Bit:    r.Intn(ModuleBits(mod)),
			Cycle:  uint64(r.Intn(int(goldenCycles))),
		}

		gFull := snapshotInputs()
		full.Inject(f)
		errFull := full.Run(prog, 1, 64, gFull, 0, budget)

		ff.Inject(f)
		pruned, errFF := ff.RunFromPruned(latest(f.Cycle), budget, every, at)
		if !pruned {
			// Without a prune the resumed run must be the plain RunFrom
			// result; the non-pruned equivalence is covered above.
			if (errFull == nil) != (errFF == nil) {
				t.Fatalf("fault %+v: full err %v, fast-forward err %v", f, errFull, errFF)
			}
			continue
		}
		prunes++
		if errFF != nil {
			t.Fatalf("fault %+v: pruned run returned error %v", f, errFF)
		}
		if errFull != nil {
			t.Fatalf("fault %+v: pruned, but full replay errored: %v", f, errFull)
		}
		if full.Cycles() != goldenCycles {
			t.Fatalf("fault %+v: pruned, but full replay took %d cycles (golden %d)", f, full.Cycles(), goldenCycles)
		}
		for w := range gFull {
			if gFull[w] != golden[w] {
				t.Fatalf("fault %+v: pruned, but full replay corrupted word %d (%#x != %#x)",
					f, w, gFull[w], golden[w])
			}
		}
	}
	if prunes == 0 {
		t.Fatal("no fault pruned; the reconvergence path was not exercised")
	}
}
