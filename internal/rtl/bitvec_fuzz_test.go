package rtl

import (
	"fmt"
	"math/big"
	"testing"
)

// This file property-tests the State bit-vector against a math/big.Int
// reference model. The interesting cases are fields that straddle a
// 64-bit word boundary: Get/Set there split every access across two
// words with complementary shifts, and an off-by-one in either half
// silently corrupts a neighbouring field — exactly the kind of bug a
// layout reshuffle would surface months later as a wrong campaign tally.

// fuzzLayout builds a layout whose field widths are driven by the fuzz
// input, so the corpus explores many different straddle positions. Widths
// are folded into 1..64 and fields are appended until the layout spans at
// least five words.
func fuzzLayout(widths []byte) *Layout {
	var fs []Field
	bits := 0
	for i := 0; bits < 5*64; i++ {
		w := 1
		if len(widths) > 0 {
			w = int(widths[i%len(widths)])%64 + 1
		}
		fs = append(fs, Field{Name: fmt.Sprintf("f%d", i), Width: w})
		bits += w
	}
	return NewLayout("fuzz", fs)
}

// bigRef is the reference model: the whole module as one big.Int.
type bigRef struct {
	lay *Layout
	x   *big.Int
}

func (r *bigRef) get(fi int) uint64 {
	f := r.lay.Fields[fi]
	v := new(big.Int).Rsh(r.x, uint(f.Offset))
	mask := new(big.Int).Lsh(big.NewInt(1), uint(f.Width))
	mask.Sub(mask, big.NewInt(1))
	return v.And(v, mask).Uint64()
}

func (r *bigRef) set(fi int, v uint64) {
	f := r.lay.Fields[fi]
	for b := 0; b < f.Width; b++ {
		r.x.SetBit(r.x, f.Offset+b, uint(v>>uint(b)&1))
	}
}

func (r *bigRef) flip(bit int) {
	r.x.SetBit(r.x, bit, r.x.Bit(bit)^1)
}

// checkAgainstRef drives an op sequence decoded from data over both the
// State and the big.Int reference and compares every observable.
func checkAgainstRef(t *testing.T, data []byte) {
	t.Helper()
	if len(data) < 2 {
		return
	}
	lay := fuzzLayout(data[:len(data)/2])
	st := NewState(lay)
	ref := &bigRef{lay: lay, x: new(big.Int)}

	ops := data[len(data)/2:]
	for i := 0; i+9 <= len(ops); i += 9 {
		fi := int(ops[i]) % len(lay.Fields)
		var v uint64
		for b := 0; b < 8; b++ {
			v = v<<8 | uint64(ops[i+1+b])
		}
		switch ops[i] % 3 {
		case 0:
			st.Set(fi, v)
			f := lay.Fields[fi]
			if f.Width < 64 {
				v &= 1<<uint(f.Width) - 1
			}
			ref.set(fi, v)
		case 1:
			bit := int(v % uint64(lay.Bits))
			st.FlipBit(bit)
			ref.flip(bit)
			if got, want := st.Bit(bit), uint64(ref.x.Bit(bit)); got != want {
				t.Fatalf("op %d: Bit(%d) = %d, reference %d", i, bit, got, want)
			}
		case 2:
			if got, want := st.Get(fi), ref.get(fi); got != want {
				t.Fatalf("op %d: Get(%s) = %#x, reference %#x", i, lay.Fields[fi].Name, got, want)
			}
		}
	}
	// Full sweep: every field and every bit must agree, and the popcount
	// ties the word array to the reference as a whole.
	for fi := range lay.Fields {
		if got, want := st.Get(fi), ref.get(fi); got != want {
			t.Fatalf("final: Get(%s) = %#x, reference %#x", lay.Fields[fi].Name, got, want)
		}
	}
	pop := 0
	for b := 0; b < lay.Bits; b++ {
		if got, want := st.Bit(b), uint64(ref.x.Bit(b)); got != want {
			t.Fatalf("final: Bit(%d) = %d, reference %d", b, got, want)
		}
		pop += int(ref.x.Bit(b))
	}
	if got := st.PopCount(); got != pop {
		t.Fatalf("final: PopCount = %d, reference %d", got, pop)
	}
}

// FuzzBitvecAgainstBigInt is the fuzz entry; `go test` runs the seed
// corpus, and CI runs a short -fuzz smoke on top.
func FuzzBitvecAgainstBigInt(f *testing.F) {
	f.Add([]byte{63, 1, 33, 64, 7, 2, 0, 255, 128, 9, 63, 62, 61, 17, 90, 200, 3, 4, 5, 6})
	f.Add([]byte{64, 64, 64, 1, 1, 1, 32, 33, 31, 0, 9, 18, 27, 36, 45, 54, 63, 72, 81, 90})
	f.Add([]byte{5, 60, 12, 48, 24, 40, 36, 28, 44, 20, 52, 16, 56, 8, 2, 250, 100, 150, 200, 50})
	f.Fuzz(checkAgainstRef)
}

// TestBitvecAgainstBigInt runs the same property over a deterministic
// pseudo-random corpus so plain `go test` exercises straddling accesses
// even when fuzzing is off.
func TestBitvecAgainstBigInt(t *testing.T) {
	// xorshift64 keeps the corpus reproducible without math/rand.
	s := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return byte(s)
	}
	for round := 0; round < 64; round++ {
		data := make([]byte, 400)
		for i := range data {
			data[i] = next()
		}
		checkAgainstRef(t, data)
	}
}
