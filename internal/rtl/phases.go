package rtl

import (
	"gpufi/internal/isa"
)

// phaseSched selects the next ready warp (round-robin), resolving SIMT
// reconvergence pops, releasing barriers, and detecting block completion.
func (m *Machine) phaseSched() {
	sch := m.Sched
	start := int(sch.Get(m.sf.rrptr)) % MaxWarps
	for i := 0; i < MaxWarps; i++ {
		w := (start + i) % MaxWarps
		if sch.Get(m.sf.state[w]) != stReady {
			continue
		}
		if !m.resolveWarp(w) {
			continue // warp drained to DONE
		}
		sch.Set(m.sf.curwarp, uint64(w))
		sch.Set(m.sf.rrptr, uint64((w+1)%MaxWarps))
		sch.Set(m.sf.fpc, sch.Get(m.sf.pc[w]))
		sch.Set(m.sf.fwarp, uint64(w))
		sch.Set(m.sf.maskcache, uint64(m.warpMask[w]))
		m.Pipe.Set(m.pf.ifPC, sch.Get(m.sf.pc[w]))
		m.Pipe.Set(m.pf.ifWarp, uint64(w))
		m.Pipe.Set(m.pf.ifValid, 1)
		m.Pipe.Set(m.pf.ifBlock, uint64(m.curBlock)&0xFF)
		sch.Set(m.sf.phase, phFetch)
		return
	}

	// No ready warp: barrier release, completion, or stall.
	allDoneOrEmpty, anyBar, anyOther := true, false, false
	for w := 0; w < MaxWarps; w++ {
		switch sch.Get(m.sf.state[w]) {
		case stEmpty, stDone:
		case stAtBar:
			anyBar = true
			allDoneOrEmpty = false
		default:
			anyOther = true
			allDoneOrEmpty = false
		}
	}
	switch {
	case allDoneOrEmpty:
		m.blockDone = true
	case anyBar && !anyOther:
		for w := 0; w < MaxWarps; w++ {
			if sch.Get(m.sf.state[w]) == stAtBar {
				sch.Set(m.sf.state[w], stReady)
			}
		}
		sch.Set(m.sf.barwait, 0)
		sch.Set(m.sf.barmask, 0)
		// stall otherwise: a corrupted warp state wedges the scheduler and
		// the watchdog converts the hang into a DUE.
	}
}

// resolveWarp pops reconverged or drained SIMT stack levels for warp w,
// returning false when the warp has fully completed.
func (m *Machine) resolveWarp(w int) bool {
	sch := m.Sched
	m.markWarp(w)
	if m.vec != nil && m.vec.hot == nil {
		m.vec.onMaskRead(w)
	}
	for {
		pc := uint32(sch.Get(m.sf.pc[w]))
		rc := uint32(sch.Get(m.sf.reconv[w]))
		if m.warpMask[w] != 0 && !(rc != reconvNone && pc == rc) {
			return true
		}
		depth := int(sch.Get(m.sf.depth[w]))
		if depth == 0 || len(m.stacks[w]) == 0 {
			if m.vec != nil {
				m.vec.onMaskWrite(w, m.warpMask[w])
			}
			sch.Set(m.sf.state[w], stDone)
			m.warpMask[w] = 0
			return false
		}
		if m.vec != nil {
			m.vec.onStackTouch(w)
			m.vec.onMaskWrite(w, m.warpMask[w])
		}
		e := m.stacks[w][len(m.stacks[w])-1]
		m.stacks[w] = m.stacks[w][:len(m.stacks[w])-1]
		sch.Set(m.sf.pc[w], uint64(e.pc))
		m.warpMask[w] = e.mask
		sch.Set(m.sf.reconv[w], uint64(e.reconv))
		sch.Set(m.sf.depth[w], uint64(depth-1))
	}
}

// phaseFetch reads instruction memory at the fetch-stage PC, filling the
// scheduler's per-warp instruction buffer with the control word and the
// pipeline latch with the immediate word.
func (m *Machine) phaseFetch() {
	pc := m.Sched.Get(m.sf.fpc)
	if pc >= uint64(len(m.imem)) {
		m.err = ErrBadPC
		return
	}
	fw := int(m.Sched.Get(m.sf.fwarp)) % MaxWarps
	w := m.imem[pc]
	m.Sched.Set(m.sf.ibuf[fw], w[0])
	m.Sched.Set(m.sf.fparity, w[0]>>32^w[1]>>32&0xFFFFF)
	m.Pipe.Set(m.pf.ifInstrHi, w[1])
	m.Pipe.Set(m.pf.ifEcc, w[0])
	m.Sched.Set(m.sf.phase, phDecode)
}

// phaseDecode decodes the buffered instruction into the ID latches. The
// control word comes from the scheduler's instruction buffer — a fault
// there corrupts the operation for the entire warp.
func (m *Machine) phaseDecode() {
	fw := int(m.Sched.Get(m.sf.fwarp)) % MaxWarps
	word := isa.Word{m.Sched.Get(m.sf.ibuf[fw]), m.Pipe.Get(m.pf.ifInstrHi)}
	in, err := isa.Decode(word)
	if err != nil {
		m.err = ErrIllegalInstr
		return
	}
	pf, p := &m.pf, m.Pipe
	p.Set(pf.idOp, uint64(in.Op))
	p.Set(pf.idDst, uint64(in.Dst))
	p.Set(pf.idSrcA, uint64(in.SrcA))
	p.Set(pf.idSrcB, uint64(in.SrcB))
	p.Set(pf.idSrcC, uint64(in.SrcC))
	p.Set(pf.idGuard, uint64(in.Guard))
	p.Set(pf.idPDst, uint64(in.PDst))
	p.Set(pf.idCmp, uint64(in.Cmp))
	if in.UseImmB {
		p.Set(pf.idUseImm, 1)
	} else {
		p.Set(pf.idUseImm, 0)
	}
	p.Set(pf.idImm, uint64(uint32(in.Imm)))
	p.Set(pf.idTarget, uint64(in.Target))
	p.Set(pf.idReconv, uint64(in.Reconv))
	p.Set(pf.idPC, p.Get(pf.ifPC))
	p.Set(pf.idWarp, p.Get(pf.ifWarp))
	p.Set(pf.idValid, p.Get(pf.ifValid))
	p.Set(pf.idMask, m.Sched.Get(m.sf.maskcache))
	m.Sched.Set(m.sf.phase, phCollect)
}

// phaseCollect stages predicates, evaluates the guard, reads the register
// file into the operand collector and routes the instruction.
func (m *Machine) phaseCollect() {
	pf, p := &m.pf, m.Pipe
	w := int(p.Get(pf.idWarp)) % MaxWarps
	op := isa.Opcode(p.Get(pf.idOp))

	// Predicate staging (guard evaluation uses bank A; per-lane selector
	// predicates for SEL/IMNMX/FMNMX use bank B).
	if m.vec != nil && m.vec.hot == nil {
		m.vec.onPredRead(w)
	}
	for pr := 0; pr < 8; pr++ {
		p.Set(pf.predA[pr], uint64(m.preds[w][pr]))
		p.Set(pf.predB[pr], uint64(m.preds[w][pr]))
	}
	guardPred := isa.Pred(p.Get(pf.idGuard))
	pm := uint32(p.Get(pf.predA[guardPred.Index()]))
	if guardPred.Neg() {
		pm = ^pm
	}
	cw := int(m.Sched.Get(m.sf.curwarp)) % MaxWarps
	guard := pm & uint32(p.Get(pf.idMask))
	// The thread-enable clusters gate execution lanes; warp retirement
	// (EXIT) is warp-level control and ignores them, so a corrupted
	// enable bit silently drops a cluster's results (a multi-thread SDC,
	// §V-B) instead of wedging the warp.
	if op != isa.OpEXIT {
		guard &= groupExpand(uint8(m.Sched.Get(m.sf.groupen[cw])))
	}

	imm := uint32(p.Get(pf.idImm))
	mem := op.IsMemory()
	// Memory instructions are processed warp-wide by the LSU, so their
	// operands (addresses and store data) are collected here; arithmetic
	// operands are read per 8-lane group at issue time, matching the
	// short residency of real pipeline stage latches.
	if mem {
		srcA := isa.Reg(p.Get(pf.idSrcA)) % isa.NumRegs
		srcB := isa.Reg(p.Get(pf.idSrcB)) % isa.NumRegs
		srcC := isa.Reg(p.Get(pf.idSrcC)) % isa.NumRegs
		useImm := p.Get(pf.idUseImm) == 1
		if m.vec != nil && m.vec.hot == nil {
			m.vec.onRegRead(w, int(srcA))
			m.vec.onRegRead(w, int(srcC))
			if !useImm {
				m.vec.onRegRead(w, int(srcB))
			}
		}
		for lane := 0; lane < WarpSize; lane++ {
			b := imm
			if !useImm {
				b = m.regs[w][srcB][lane]
			}
			p.Set(pf.colbA[lane], uint64(m.regs[w][srcA][lane]))
			p.Set(pf.colbB[lane], uint64(b))
			p.Set(pf.colbC[lane], uint64(m.regs[w][srcC][lane]))
		}
		p.Set(pf.colbValid, uint64(guard))
		p.Set(pf.colbOp, uint64(op))
		p.Set(pf.colbDst, p.Get(pf.idDst))
		p.Set(pf.colbWarp, uint64(w))
		p.Set(pf.colbPDst, p.Get(pf.idPDst))
		p.Set(pf.colbGuard, p.Get(pf.idGuard))
		p.Set(pf.colbImm, uint64(imm))
		p.Set(pf.colbMask, p.Get(pf.idMask))
	} else {
		p.Set(pf.colaValid, uint64(guard))
		p.Set(pf.colaOp, uint64(op))
		p.Set(pf.colaDst, p.Get(pf.idDst))
		p.Set(pf.colaWarp, uint64(w))
		p.Set(pf.colaPDst, p.Get(pf.idPDst))
		p.Set(pf.colaGuard, p.Get(pf.idGuard))
		p.Set(pf.colaImm, uint64(imm))
		p.Set(pf.colaMask, p.Get(pf.idMask))
	}

	switch {
	case op == isa.OpBRA:
		p.Set(pf.brTaken, uint64(guard))
		p.Set(pf.brNtaken, uint64(uint32(p.Get(pf.idMask))&^guard))
		p.Set(pf.brTarget, p.Get(pf.idTarget))
		p.Set(pf.brReconv, p.Get(pf.idReconv))
		p.Set(pf.brValid, 1)
		m.Sched.Set(m.sf.phase, phCommit)
	case op == isa.OpEXIT || op == isa.OpBAR || op == isa.OpNOP:
		m.Sched.Set(m.sf.phase, phCommit)
	case mem:
		m.Sched.Set(m.sf.phase, phMemAddr)
	default:
		m.Sched.Set(m.sf.group, 0)
		m.Sched.Set(m.sf.phase, phIssue)
	}
}

// groupExpand widens the scheduler's 8-bit thread-enable clusters to a
// 32-lane mask (bit i enables lanes 4i..4i+3).
func groupExpand(en uint8) uint32 {
	var mask uint32
	for i := 0; i < 8; i++ {
		if en>>uint(i)&1 == 1 {
			mask |= 0xF << uint(4*i)
		}
	}
	return mask
}

func (m *Machine) specialValue(sr isa.SpecialReg, slot uint32, lane int) uint32 {
	switch sr {
	case isa.SRTid:
		return slot*WarpSize + uint32(lane)
	case isa.SRCtaid:
		return uint32(m.curBlock)
	case isa.SRNtid:
		return uint32(m.block)
	case isa.SRNctaid:
		return uint32(m.grid)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarpID:
		return slot
	default:
		return 0
	}
}

// phaseIssue reads one 8-lane group's operands from the register file
// through the collector into the execute input registers and primes the
// functional unit.
func (m *Machine) phaseIssue() {
	pf, p := &m.pf, m.Pipe
	g := int(m.Sched.Get(m.sf.group)) & 3
	valid := uint32(p.Get(pf.colaValid))
	sub := valid >> uint(8*g) & 0xFF

	w := int(p.Get(pf.colaWarp)) % MaxWarps
	op := isa.Opcode(p.Get(pf.colaOp))
	srcA := isa.Reg(p.Get(pf.idSrcA)) % isa.NumRegs
	srcB := isa.Reg(p.Get(pf.idSrcB)) % isa.NumRegs
	srcC := isa.Reg(p.Get(pf.idSrcC)) % isa.NumRegs
	useImm := p.Get(pf.idUseImm) == 1
	imm := uint32(p.Get(pf.colaImm))
	slot := uint32(m.Sched.Get(m.sf.slot[w]))
	if m.vec != nil && m.vec.hot == nil {
		m.vec.onRegRead(w, int(srcA))
		m.vec.onRegRead(w, int(srcC))
		if op != isa.OpS2R && op != isa.OpMOV32I && !useImm {
			m.vec.onRegRead(w, int(srcB))
		}
	}
	for i := 0; i < NumLanes; i++ {
		lane := 8*g + i
		var b uint32
		switch {
		case op == isa.OpS2R:
			b = m.specialValue(isa.SpecialReg(imm), slot, lane)
		case op == isa.OpMOV32I || useImm:
			b = imm
		default:
			b = m.regs[w][srcB][lane]
		}
		p.Set(pf.colaA[lane], uint64(m.regs[w][srcA][lane]))
		p.Set(pf.colaB[lane], uint64(b))
		p.Set(pf.colaC[lane], uint64(m.regs[w][srcC][lane]))
		p.Set(pf.exinA[i], p.Get(pf.colaA[lane]))
		p.Set(pf.exinB[i], p.Get(pf.colaB[lane]))
		p.Set(pf.exinC[i], p.Get(pf.colaC[lane]))
	}
	p.Set(pf.issGroup, uint64(g))
	p.Set(pf.issSubmask, uint64(sub))
	p.Set(pf.issOp, p.Get(pf.colaOp))
	p.Set(pf.issDst, p.Get(pf.colaDst))
	p.Set(pf.issWarp, p.Get(pf.colaWarp))
	p.Set(pf.issValid, 1)
	p.Set(pf.issPDst, p.Get(pf.colaPDst))
	p.Set(pf.issCmp, p.Get(pf.idCmp))
	p.Set(pf.issImm, p.Get(pf.colaImm))
	// Record the issue history (control bookkeeping).
	hist := uint32(p.Get(pf.grpHist))
	p.Set(pf.grpHist, uint64(hist<<8|sub))
	m.Sched.Set(m.sf.phase, phExec)
}

// phaseExec advances the functional unit executing the issued group.
func (m *Machine) phaseExec() {
	op := isa.Opcode(m.Pipe.Get(m.pf.issOp))
	switch routeUnit(op) {
	case isa.UnitFP32:
		m.stepFP32()
	case isa.UnitSFU:
		m.stepSFU()
	default:
		m.stepINT()
	}
}

// routeUnit maps an opcode to the RTL execution unit. Unlike the profiling
// classification in isa, the RTL model routes comparisons, conversions and
// min/max through the integer lane ALU.
func routeUnit(op isa.Opcode) isa.Unit {
	switch op {
	case isa.OpFADD, isa.OpFMUL, isa.OpFFMA:
		return isa.UnitFP32
	case isa.OpFSIN, isa.OpFEXP, isa.OpFRCP, isa.OpFRSQRT:
		return isa.UnitSFU
	default:
		return isa.UnitINT
	}
}

// phaseGroupWB copies the execute output latch into the writeback buffer
// and either issues the next group or proceeds to writeback.
func (m *Machine) phaseGroupWB() {
	pf, p := &m.pf, m.Pipe
	g := int(m.Sched.Get(m.sf.group)) & 3
	sub := uint32(p.Get(pf.issSubmask))
	for i := 0; i < NumLanes; i++ {
		if sub>>uint(i)&1 == 1 {
			p.Set(pf.wbRes[8*g+i], p.Get(pf.exout[i]))
		}
	}
	if g == NumGroups-1 {
		op := isa.Opcode(p.Get(pf.issOp))
		p.Set(pf.wbWarp, p.Get(pf.colaWarp))
		p.Set(pf.wbDst, p.Get(pf.colaDst))
		p.Set(pf.wbMask, p.Get(pf.colaValid))
		p.Set(pf.wbValid, 1)
		if op.SetsPred() {
			p.Set(pf.wbIsPred, 1)
		} else {
			p.Set(pf.wbIsPred, 0)
		}
		p.Set(pf.wbPDst, p.Get(pf.colaPDst))
		p.Set(pf.wbPC, p.Get(pf.idPC))
		m.Sched.Set(m.sf.phase, phWriteback)
	} else {
		m.Sched.Set(m.sf.group, uint64(g+1))
		m.Sched.Set(m.sf.phase, phIssue)
	}
}

// phaseMemAddr generates per-lane addresses in the LSU buffer.
func (m *Machine) phaseMemAddr() {
	pf, p := &m.pf, m.Pipe
	valid := uint32(p.Get(pf.colbValid))
	imm := int32(uint32(p.Get(pf.colbImm)))
	for lane := 0; lane < WarpSize; lane++ {
		if valid>>uint(lane)&1 == 0 {
			continue
		}
		base := int32(uint32(p.Get(pf.colbA[lane])))
		p.Set(pf.lsuAddr[lane], uint64(uint32(base+imm)))
	}
	op := isa.Opcode(p.Get(pf.colbOp))
	var code uint64
	switch op {
	case isa.OpGLD:
		code = 0
	case isa.OpGST:
		code = 1
	case isa.OpSLD:
		code = 2
	default:
		code = 3
	}
	p.Set(pf.lsuValid, uint64(valid))
	p.Set(pf.lsuOp, code)
	p.Set(pf.lsuWarp, p.Get(pf.colbWarp))
	p.Set(pf.lsuImm, uint64(uint32(imm)))
	p.Set(pf.lsuAValid, uint64(valid))
	m.Sched.Set(m.sf.phase, phMemAccess)
}

// phaseMemAccess performs the memory transaction.
func (m *Machine) phaseMemAccess() {
	pf, p := &m.pf, m.Pipe
	valid := uint32(p.Get(pf.lsuValid)) & uint32(p.Get(pf.lsuAValid))
	code := p.Get(pf.lsuOp)
	mem := m.global
	if code >= 2 {
		mem = m.shared
	}
	isStore := code == 1 || code == 3
	for lane := 0; lane < WarpSize; lane++ {
		if valid>>uint(lane)&1 == 0 {
			continue
		}
		addr := int64(int32(uint32(p.Get(pf.lsuAddr[lane]))))
		if addr < 0 || addr >= int64(len(mem)) {
			m.err = ErrBadAddress
			return
		}
		if isStore {
			if m.vec != nil {
				m.vec.onMemWrite(code >= 2, int(addr), mem[addr])
			}
			mem[addr] = uint32(p.Get(pf.colbC[lane]))
		} else {
			if m.vec != nil && m.vec.hot == nil {
				m.vec.onMemRead(code >= 2, int(addr))
			}
			p.Set(pf.wbRes[lane], uint64(mem[addr]))
		}
	}
	if isStore {
		p.Set(pf.wbValid, 0)
		m.Sched.Set(m.sf.phase, phCommit)
		return
	}
	p.Set(pf.wbWarp, p.Get(pf.colbWarp))
	p.Set(pf.wbDst, p.Get(pf.colbDst))
	p.Set(pf.wbMask, uint64(valid))
	p.Set(pf.wbValid, 1)
	p.Set(pf.wbIsPred, 0)
	m.Sched.Set(m.sf.phase, phWriteback)
}

// phaseWriteback commits the writeback buffer to the register or predicate
// file.
func (m *Machine) phaseWriteback() {
	pf, p := &m.pf, m.Pipe
	if p.Get(pf.wbValid) == 1 {
		w := int(p.Get(pf.wbWarp)) % MaxWarps
		m.markWarp(w)
		dst := isa.Reg(p.Get(pf.wbDst)) % isa.NumRegs
		mask := uint32(p.Get(pf.wbMask))
		isPred := p.Get(pf.wbIsPred) == 1
		pdst := isa.Pred(p.Get(pf.wbPDst))
		for lane := 0; lane < WarpSize; lane++ {
			if mask>>uint(lane)&1 == 0 {
				continue
			}
			v := uint32(p.Get(pf.wbRes[lane]))
			if isPred {
				m.setPred(w, pdst, lane, v&1 == 1)
			} else if dst != isa.RZ {
				if m.vec != nil {
					m.vec.onRegWrite(w, int(dst), lane, m.regs[w][dst][lane])
				}
				m.regs[w][dst][lane] = v
			}
		}
	}
	m.Sched.Set(m.sf.phase, phCommit)
}

func (m *Machine) setPred(w int, pd isa.Pred, lane int, v bool) {
	idx := pd.Index()
	if idx == isa.PT {
		return
	}
	if m.vec != nil {
		// A predicate write is a read-modify-write of the predicate word,
		// so it both triggers parked lanes and logs the old word.
		m.vec.onPredWrite(w, int(idx), m.preds[w][idx])
	}
	bit := uint32(1) << uint(lane)
	if v != pd.Neg() {
		m.preds[w][idx] |= bit
	} else {
		m.preds[w][idx] &^= bit
	}
}

// phaseCommit retires the instruction: branch resolution, exits, barriers
// and the PC update. The warp-table row to update is selected by the
// scheduler's current-warp pointer — corrupting it teleports another
// warp's control flow, a whole-warp corruption mode (§V-B).
func (m *Machine) phaseCommit() {
	pf, p := &m.pf, m.Pipe
	sch := m.Sched
	w := int(sch.Get(m.sf.curwarp)) % MaxWarps
	m.markWarp(w)
	if m.vec != nil && m.vec.hot == nil {
		m.vec.onMaskRead(w)
	}
	op := isa.Opcode(p.Get(pf.idOp))
	pcNext := uint32(p.Get(pf.idPC)) + 1

	switch op {
	case isa.OpBRA:
		taken := uint32(p.Get(pf.brTaken))
		ntaken := uint32(p.Get(pf.brNtaken))
		target := uint32(p.Get(pf.brTarget))
		rc := uint32(p.Get(pf.brReconv))
		switch {
		case taken == 0:
			sch.Set(m.sf.pc[w], uint64(pcNext))
		case ntaken == 0:
			sch.Set(m.sf.pc[w], uint64(target))
		default:
			if rc == 0 {
				m.err = ErrBadStack
				return
			}
			depth := int(sch.Get(m.sf.depth[w]))
			if depth+2 >= 1<<5 {
				m.err = ErrBadStack
				return
			}
			curMask := m.warpMask[w]
			curReconv := uint32(sch.Get(m.sf.reconv[w]))
			if m.vec != nil {
				m.vec.onStackTouch(w)
				m.vec.onMaskWrite(w, curMask)
			}
			m.stacks[w] = append(m.stacks[w],
				simtEntry{pc: rc, mask: curMask, reconv: curReconv},
				simtEntry{pc: pcNext, mask: ntaken, reconv: rc},
			)
			sch.Set(m.sf.depth[w], uint64(depth+2))
			sch.Set(m.sf.pc[w], uint64(target))
			m.warpMask[w] = taken
			sch.Set(m.sf.reconv[w], uint64(rc))
		}
	case isa.OpEXIT:
		guard := uint32(p.Get(pf.colaValid))
		if m.vec != nil {
			m.vec.onMaskWrite(w, m.warpMask[w])
			m.vec.onStackTouch(w)
		}
		m.warpMask[w] &^= guard
		for i := range m.stacks[w] {
			m.stacks[w][i].mask &^= guard
		}
		sch.Set(m.sf.pc[w], uint64(pcNext))
	case isa.OpBAR:
		guard := uint32(p.Get(pf.colaValid))
		mask := m.warpMask[w]
		if sch.Get(m.sf.depth[w]) != 0 || guard != mask {
			m.err = ErrBadBarrier
			return
		}
		sch.Set(m.sf.state[w], stAtBar)
		sch.Set(m.sf.barwait, sch.Get(m.sf.barwait)+1)
		sch.Set(m.sf.barmask, sch.Get(m.sf.barmask)|1<<uint(w))
		sch.Set(m.sf.pc[w], uint64(pcNext))
	default:
		sch.Set(m.sf.pc[w], uint64(pcNext))
	}
	sch.Set(m.sf.phase, phSched)
}
