package rtl

import (
	"testing"

	"gpufi/internal/faults"
)

// liveHarness drives a Liveness with a hand-written access schedule the
// way Machine.stepCycle would: markCycle pins the cycle's fault
// application point, then the cycle's "phase logic" touches the state.
// It gives the boundary-semantics tests full control over where reads,
// writes and resets land relative to fault sites.
type liveHarness struct {
	l  *Liveness
	st *State
	f  int // the single field's index
}

func newLiveHarness() *liveHarness {
	lay := NewLayout("test", []Field{{Name: "f", Width: 4}})
	st := NewState(lay)
	l := &Liveness{}
	mi := moduleIndex(faults.ModFP32)
	l.mods[mi].init(lay)
	st.live, st.liveMod = l, mi
	return &liveHarness{l: l, st: st, f: lay.MustField("f")}
}

func (h *liveHarness) cycle(accesses ...func()) {
	h.l.markCycle(uint64(len(h.l.cycleStart)))
	for _, a := range accesses {
		a()
	}
}

func (h *liveHarness) read() func()  { return func() { h.st.Get(h.f) } }
func (h *liveHarness) write() func() { return func() { h.st.Set(h.f, 1) } }
func (h *liveHarness) reset() func() { return func() { h.st.Reset() } }

// TestLivenessBoundarySemantics pins DeadAt and GapAt at every boundary
// the engine depends on: a fault at the cycle of a write event, at the
// cycle of a read event, at a Reset, and at the traced run's last cycle.
func TestLivenessBoundarySemantics(t *testing.T) {
	h := newLiveHarness()
	h.cycle(h.write()) // cycle 0: write
	h.cycle(h.read())  // cycle 1: read
	h.cycle(h.read())  // cycle 2: read
	h.cycle(h.write()) // cycle 3: overwrite
	h.cycle()          // cycle 4: idle
	h.cycle(h.read())  // cycle 5: read
	h.cycle(h.reset()) // cycle 6: whole-module Reset
	h.cycle(h.read())  // cycle 7: read
	h.cycle()          // cycle 8: last cycle, idle

	cases := []struct {
		name  string
		cycle uint64
		dead  bool
		gap   int // meaningful only when !dead
	}{
		// A fault lands at the *start* of its cycle, so a same-cycle
		// write event overwrites it: provably dead.
		{"at write cycle (pre-overwrite)", 0, true, 0},
		// A same-cycle read event happens after the cycle start, so it is
		// the corrupted value's first observation: live, first gap.
		{"at read cycle (first gap)", 1, false, 0},
		// The next read opens the next gap: cycles 1 and 2 must not
		// collapse together.
		{"between reads (second gap)", 2, false, 1},
		// Overwrite cycle again, now after a live span closed.
		{"at overwrite cycle", 3, true, 0},
		// An idle cycle and the following read cycle corrupt the same
		// stored value and are first observed by the same read: one gap.
		{"idle before read", 4, false, 2},
		{"at that read cycle", 5, false, 2},
		// Reset writes every field: a fault at the Reset cycle dies.
		{"at Reset cycle", 6, true, 0},
		// The post-Reset value is read once more: live, a fresh gap.
		{"after Reset", 7, false, 3},
		// Never read after the last access: dead at the last cycle.
		{"last cycle (never read again)", 8, true, 0},
	}
	for _, tc := range cases {
		dead := h.l.DeadAt(faults.ModFP32, 0, tc.cycle)
		gap, ok := h.l.GapAt(faults.ModFP32, 0, tc.cycle)
		if dead != tc.dead {
			t.Errorf("%s: DeadAt(cycle %d) = %v, want %v", tc.name, tc.cycle, dead, tc.dead)
		}
		if ok != !tc.dead {
			t.Errorf("%s: GapAt(cycle %d) ok = %v, want %v (must agree with DeadAt)", tc.name, tc.cycle, ok, !tc.dead)
		}
		if ok && gap != tc.gap {
			t.Errorf("%s: GapAt(cycle %d) = %d, want gap %d", tc.name, tc.cycle, gap, tc.gap)
		}
	}

	if got := h.l.Cycles(); got != 9 {
		t.Fatalf("Cycles() = %d, want 9", got)
	}
}

// TestLivenessOutOfRange pins the conservative disagreement outside the
// traced run: DeadAt cannot prove such a site dead (false), and GapAt
// cannot collapse it (ok=false) — each unprovable case falls back to the
// safe side of its own consumer.
func TestLivenessOutOfRange(t *testing.T) {
	h := newLiveHarness()
	h.cycle(h.write())
	h.cycle(h.read())

	if h.l.DeadAt(faults.ModFP32, 0, 99) {
		t.Error("DeadAt past the traced run must conservatively report live")
	}
	if _, ok := h.l.GapAt(faults.ModFP32, 0, 99); ok {
		t.Error("GapAt past the traced run must report ok=false")
	}
	for _, bit := range []int{-1, 4, 1 << 20} {
		if h.l.DeadAt(faults.ModFP32, bit, 1) {
			t.Errorf("DeadAt(bit %d) outside the layout must report live", bit)
		}
		if _, ok := h.l.GapAt(faults.ModFP32, bit, 1); ok {
			t.Errorf("GapAt(bit %d) outside the layout must report ok=false", bit)
		}
	}
}

// TestLivenessGapAgreesWithDeadAt sweeps a real traced run and checks the
// structural invariant collapse relies on: GapAt returns ok exactly when
// DeadAt reports the site live, for every bit and cycle.
func TestLivenessGapAgreesWithDeadAt(t *testing.T) {
	h := newLiveHarness()
	h.cycle(h.write())
	h.cycle(h.read(), h.write())
	h.cycle()
	h.cycle(h.read())
	h.cycle(h.reset(), h.write())
	h.cycle(h.read(), h.read()) // double read in one cycle: one boundary
	h.cycle()

	for cycle := uint64(0); cycle < h.l.Cycles(); cycle++ {
		for bit := 0; bit < h.st.Lay.Bits; bit++ {
			dead := h.l.DeadAt(faults.ModFP32, bit, cycle)
			_, ok := h.l.GapAt(faults.ModFP32, bit, cycle)
			if ok == dead {
				t.Fatalf("bit %d cycle %d: GapAt ok=%v but DeadAt=%v", bit, cycle, ok, dead)
			}
		}
	}
}
