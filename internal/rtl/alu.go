package rtl

import (
	"math"

	"gpufi/internal/fp32"
	"gpufi/internal/isa"
)

// stepINT advances the 8-lane integer ALU one cycle.
//
// Stage 0 latches the execute inputs into the per-lane operand registers;
// stage 1 runs the multiplier array and addend forwarding; stage 2
// finalises each lane's result into the pipeline's execute output latch.
func (m *Machine) stepINT() {
	n, s := &m.nf, m.INT
	switch s.Get(n.iuStage) {
	case 0:
		sub := uint32(m.Pipe.Get(m.pf.issSubmask))
		for i := 0; i < NumLanes; i++ {
			s.Set(n.s1A[i], m.Pipe.Get(m.pf.exinA[i]))
			s.Set(n.s1B[i], m.Pipe.Get(m.pf.exinB[i]))
			s.Set(n.s1C[i], m.Pipe.Get(m.pf.exinC[i]))
			s.Set(n.s1Op[i], m.Pipe.Get(m.pf.issOp)&0x3F)
			s.Set(n.s1Cmp[i], m.Pipe.Get(m.pf.issCmp))
			s.Set(n.s1Valid[i], uint64(sub>>uint(i)&1))
		}
		s.Set(n.iuOp, m.Pipe.Get(m.pf.issOp)&0x3F)
		s.Set(n.iuSubmask, uint64(sub))
		s.Set(n.iuValid, 1)
		s.Set(n.iuDst, m.Pipe.Get(m.pf.issDst))
		s.Set(n.iuCmp, m.Pipe.Get(m.pf.issCmp))
		s.Set(n.iuPDst, m.Pipe.Get(m.pf.issPDst))
		s.Set(n.iuStage, 1)
	case 1:
		for i := 0; i < NumLanes; i++ {
			if s.Get(n.s1Valid[i]) == 0 {
				continue
			}
			a := int32(uint32(s.Get(n.s1A[i])))
			b := int32(uint32(s.Get(n.s1B[i])))
			p := int64(a) * int64(b)
			s.Set(n.s2Prod[i], uint64(p)&(1<<48-1))
			s.Set(n.s2Addend[i], s.Get(n.s1C[i]))
			s.Set(n.s2Valid[i], 1)
		}
		s.Set(n.iuStage, 2)
	default:
		g := int(m.Sched.Get(m.sf.group)) & 3
		for i := 0; i < NumLanes; i++ {
			if s.Get(n.s1Valid[i]) == 0 {
				continue
			}
			res := m.intLaneResult(i, 8*g+i)
			m.Pipe.Set(m.pf.exout[i], uint64(res))
		}
		s.Set(n.iuValid, 0)
		s.Set(n.iuStage, 0)
		m.Sched.Set(m.sf.phase, phGroupWB)
	}
}

// intLaneResult computes the stage-2 result of one integer lane from its
// (possibly fault-corrupted) stage registers.
func (m *Machine) intLaneResult(i, globalLane int) uint32 {
	n, s := &m.nf, m.INT
	op := isa.Opcode(s.Get(n.s1Op[i]))
	a := uint32(s.Get(n.s1A[i]))
	b := uint32(s.Get(n.s1B[i]))
	prod := uint32(s.Get(n.s2Prod[i]))
	addend := uint32(s.Get(n.s2Addend[i]))
	cmp := isa.Cmp(s.Get(n.s1Cmp[i]))

	laneSel := func() bool {
		pd := isa.Pred(s.Get(n.iuPDst))
		v := uint32(m.Pipe.Get(m.pf.predB[pd.Index()]))>>uint(globalLane)&1 == 1
		if pd.Index() == isa.PT {
			v = true
		}
		if pd.Neg() {
			v = !v
		}
		return v
	}

	switch op {
	case isa.OpIADD:
		return a + b
	case isa.OpIMUL:
		return prod
	case isa.OpIMAD:
		return prod + addend
	case isa.OpISET:
		if cmp.EvalI(int32(a), int32(b)) {
			return 0xFFFFFFFF
		}
		return 0
	case isa.OpISETP:
		if cmp.EvalI(int32(a), int32(b)) {
			return 1
		}
		return 0
	case isa.OpFSETP:
		if cmp.EvalF(math.Float32frombits(a), math.Float32frombits(b)) {
			return 1
		}
		return 0
	case isa.OpMOV:
		return a
	case isa.OpMOV32I, isa.OpS2R:
		return b
	case isa.OpSEL:
		if laneSel() {
			return a
		}
		return b
	case isa.OpSHL:
		return a << (b & 31)
	case isa.OpSHR:
		return a >> (b & 31)
	case isa.OpAND:
		return a & b
	case isa.OpOR:
		return a | b
	case isa.OpXOR:
		return a ^ b
	case isa.OpIMNMX:
		x, y := int32(a), int32(b)
		if laneSel() == (x < y) {
			return uint32(x)
		}
		return uint32(y)
	case isa.OpFMNMX:
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		if laneSel() {
			return math.Float32bits(fp32.Min(fa, fb))
		}
		return math.Float32bits(fp32.Max(fa, fb))
	case isa.OpF2I:
		return uint32(fp32.F2I(math.Float32frombits(a)))
	case isa.OpI2F:
		return math.Float32bits(fp32.I2F(int32(a)))
	default:
		// Corrupted opcode field: the lane produces its raw operand, a
		// realistic don't-care output for an undecoded operation.
		return a
	}
}

// FP32 lane operation encodings (3-bit s1_op field).
const (
	fpOpAdd uint64 = iota
	fpOpMul
	fpOpFma
)

// stepFP32 advances the 8-lane FP32 unit one cycle through its staged
// datapath: latch -> unpack -> multiply -> align -> add -> round.
func (m *Machine) stepFP32() {
	x, s := &m.xf, m.FP32
	switch s.Get(x.fuStage) {
	case 0: // latch operands
		sub := uint32(m.Pipe.Get(m.pf.issSubmask))
		var enc uint64
		switch isa.Opcode(m.Pipe.Get(m.pf.issOp)) {
		case isa.OpFMUL:
			enc = fpOpMul
		case isa.OpFFMA:
			enc = fpOpFma
		default:
			enc = fpOpAdd
		}
		for i := 0; i < NumLanes; i++ {
			s.Set(x.s1A[i], m.Pipe.Get(m.pf.exinA[i]))
			s.Set(x.s1B[i], m.Pipe.Get(m.pf.exinB[i]))
			s.Set(x.s1C[i], m.Pipe.Get(m.pf.exinC[i]))
			s.Set(x.s1Op[i], enc)
			s.Set(x.s1Valid[i], uint64(sub>>uint(i)&1))
		}
		s.Set(x.fuValid, 1)
		s.Set(x.fuLaneMask, uint64(sub))
		s.Set(x.fuStage, 2)
	case 2: // unpack + special-case resolution
		for i := 0; i < NumLanes; i++ {
			if s.Get(x.s1Valid[i]) == 0 {
				continue
			}
			m.fpUnpackLane(i)
		}
		s.Set(x.fuStage, 3)
	case 3: // exact product / addend unpack
		for i := 0; i < NumLanes; i++ {
			if s.Get(x.s2Valid[i]) == 0 {
				continue
			}
			m.fpProductLane(i)
		}
		s.Set(x.fuStage, 4)
	case 4: // alignment
		for i := 0; i < NumLanes; i++ {
			if s.Get(x.s3Valid[i]) == 0 {
				continue
			}
			m.fpAlignLane(i)
		}
		s.Set(x.fuStage, 5)
	case 5: // add
		for i := 0; i < NumLanes; i++ {
			if s.Get(x.s4Valid[i]) == 0 {
				continue
			}
			al := fp32.Aligned{
				SignB: uint32(s.Get(x.s4SignB[i])),
				SignS: uint32(s.Get(x.s4SignS[i])),
				FracB: s.Get(x.s4FracB[i]),
				FracS: fp32.AlignShift(s.Get(x.s4FracS[i]), uint32(s.Get(x.s4Shift[i]))),
			}
			sign, frac := fp32.SumAligned(al)
			s.Set(x.s5Frac[i], frac)
			s.Set(x.s5Exp[i], s.Get(x.s4ExpB[i]))
			s.Set(x.s5Sign[i], uint64(sign))
			s.Set(x.s5Valid[i], 1)
		}
		s.Set(x.fuStage, 6)
	case 6: // round
		for i := 0; i < NumLanes; i++ {
			if s.Get(x.s5Valid[i]) == 0 {
				continue
			}
			var res uint32
			switch {
			case s.Get(x.s2SpecValid[i]) == 1:
				res = uint32(s.Get(x.s2Special[i]))
			case s.Get(x.s5Frac[i]) == 0:
				res = 0 // exact cancellation: +0
			default:
				res = fp32.RoundPack(
					uint32(s.Get(x.s5Sign[i])),
					decS(s.Get(x.s5Exp[i]), 10),
					s.Get(x.s5Frac[i]),
					47+fp32.AlignGuardBits,
				)
			}
			s.Set(x.s6Res[i], uint64(res))
			s.Set(x.s6Valid[i], 1)
		}
		s.Set(x.fuStage, 7)
	default: // deliver to execute output latch (gated by the lane mask)
		laneMask := s.Get(x.fuLaneMask)
		for i := 0; i < NumLanes; i++ {
			if s.Get(x.s6Valid[i]) == 1 && laneMask>>uint(i)&1 == 1 {
				m.Pipe.Set(m.pf.exout[i], s.Get(x.s6Res[i]))
			}
			s.Set(x.s2SpecValid[i], 0)
			s.Set(x.s2Valid[i], 0)
			s.Set(x.s3Valid[i], 0)
			s.Set(x.s4Valid[i], 0)
			s.Set(x.s5Valid[i], 0)
			s.Set(x.s6Valid[i], 0)
		}
		s.Set(x.fuValid, 0)
		s.Set(x.fuStage, 0)
		m.Sched.Set(m.sf.phase, phGroupWB)
	}
}

// fpUnpackLane performs the unpack stage for one lane, resolving special
// operands (NaN, infinity, zero after FTZ) through the dedicated
// special-case path.
func (m *Machine) fpUnpackLane(i int) {
	x, s := &m.xf, m.FP32
	a := uint32(s.Get(x.s1A[i]))
	b := uint32(s.Get(x.s1B[i]))
	c := uint32(s.Get(x.s1C[i]))
	op := s.Get(x.s1Op[i])

	ua, ub := fp32.Unpack(a), fp32.Unpack(b)
	special, isSpecial := uint32(0), false
	switch op {
	case fpOpMul:
		if ua.Cls != fp32.ClsNorm || ub.Cls != fp32.ClsNorm {
			special, isSpecial = fp32.MulBits(a, b), true
		}
	case fpOpFma:
		uc := fp32.Unpack(c)
		if ua.Cls != fp32.ClsNorm || ub.Cls != fp32.ClsNorm || uc.Cls != fp32.ClsNorm {
			special, isSpecial = fp32.FmaBits(a, b, c), true
		}
	default: // FADD
		if ua.Cls != fp32.ClsNorm || ub.Cls != fp32.ClsNorm {
			special, isSpecial = fp32.AddBits(a, b), true
		}
	}

	s.Set(x.s2ASign[i], uint64(ua.Sign))
	s.Set(x.s2AExp[i], encS(ua.Exp, 10))
	s.Set(x.s2AMan[i], uint64(ua.Man))
	s.Set(x.s2BSign[i], uint64(ub.Sign))
	s.Set(x.s2BExp[i], encS(ub.Exp, 10))
	s.Set(x.s2BMan[i], uint64(ub.Man))
	s.Set(x.s2Special[i], uint64(special))
	if isSpecial {
		s.Set(x.s2SpecValid[i], 1)
	} else {
		s.Set(x.s2SpecValid[i], 0)
	}
	s.Set(x.s2Op[i], op)
	s.Set(x.s2Valid[i], 1)
}

// fpProductLane performs the multiply stage: an exact 24x24 product
// normalised to bit 47 for FMUL/FFMA, or a pass-through of operand A for
// FADD; and unpacks the addend (C for FFMA, B for FADD).
func (m *Machine) fpProductLane(i int) {
	x, s := &m.xf, m.FP32
	op := s.Get(x.s2Op[i])
	aSign := uint32(s.Get(x.s2ASign[i]))
	aExp := decS(s.Get(x.s2AExp[i]), 10)
	aMan := uint32(s.Get(x.s2AMan[i]))
	bSign := uint32(s.Get(x.s2BSign[i]))
	bExp := decS(s.Get(x.s2BExp[i]), 10)
	bMan := uint32(s.Get(x.s2BMan[i]))

	var p uint64
	var pexp int32
	var psign uint32
	if op == fpOpAdd {
		p = uint64(aMan) << 24 // unit bit at 47
		pexp = aExp
		psign = aSign
	} else {
		p = uint64(aMan) * uint64(bMan) // in [2^46, 2^48)
		pexp = aExp + bExp + 1
		if p != 0 && p < 1<<47 {
			p <<= 1
			pexp--
		}
		psign = aSign ^ bSign
	}
	s.Set(x.s3P[i], p)
	s.Set(x.s3PExp[i], encS(pexp, 10))
	s.Set(x.s3PSign[i], uint64(psign))

	switch op {
	case fpOpFma:
		c := fp32.Unpack(uint32(s.Get(x.s1C[i])))
		s.Set(x.s3CSign[i], uint64(c.Sign))
		s.Set(x.s3CExp[i], encS(c.Exp, 10))
		s.Set(x.s3CMan[i], uint64(c.Man))
	case fpOpAdd:
		s.Set(x.s3CSign[i], uint64(bSign))
		s.Set(x.s3CExp[i], encS(bExp, 10))
		s.Set(x.s3CMan[i], uint64(bMan))
	default: // FMUL has no addend
		s.Set(x.s3CMan[i], 0)
	}
	s.Set(x.s3Op[i], op)
	s.Set(x.s3Valid[i], 1)
}

// fpAlignLane performs the align stage.
func (m *Machine) fpAlignLane(i int) {
	x, s := &m.xf, m.FP32
	op := s.Get(x.s3Op[i])
	p := s.Get(x.s3P[i])
	pexp := decS(s.Get(x.s3PExp[i]), 10)
	psign := uint32(s.Get(x.s3PSign[i]))

	if op == fpOpMul || s.Get(x.s3CMan[i]) == 0 {
		// No addend: pass the product through with guard headroom.
		s.Set(x.s4FracB[i], p<<fp32.AlignGuardBits)
		s.Set(x.s4FracS[i], 0)
		s.Set(x.s4ExpB[i], encS(pexp, 10))
		s.Set(x.s4SignB[i], uint64(psign))
		s.Set(x.s4SignS[i], uint64(psign))
		s.Set(x.s4Shift[i], 0)
	} else {
		cSign := uint32(s.Get(x.s3CSign[i]))
		cExp := decS(s.Get(x.s3CExp[i]), 10)
		cMan := s.Get(x.s3CMan[i]) << 24 // unit bit at 47
		al, shift := fp32.AlignOrder(psign, pexp, p, cSign, cExp, cMan)
		s.Set(x.s4FracB[i], al.FracB)
		s.Set(x.s4FracS[i], al.FracS)
		s.Set(x.s4ExpB[i], encS(al.Exp, 10))
		s.Set(x.s4SignB[i], uint64(al.SignB))
		s.Set(x.s4SignS[i], uint64(al.SignS))
		s.Set(x.s4Shift[i], uint64(shift))
	}
	s.Set(x.s4Valid[i], 1)
}
