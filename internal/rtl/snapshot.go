package rtl

import (
	"gpufi/internal/isa"
	"gpufi/internal/kasm"
)

// Snapshot is a bit-exact copy of every piece of Machine state that
// evolves during Run: the named flip-flop vectors of all six Table I
// modules, the behavioural memories (register file, predicates, SIMT
// stacks, top-of-stack masks, global and shared memory), the launch
// geometry and the cycle counter. Restoring a snapshot and resuming with
// RunFrom is guaranteed to replay the exact cycle sequence the original
// run would have executed from that point — the property the campaign
// fast-forward optimisation in internal/rtlfi relies on for bit-identical
// results.
//
// A Snapshot is immutable after capture and safe to Restore concurrently
// from multiple machines.
type Snapshot struct {
	mods [6][]uint64 // Sched, Pipe, FP32, INT, SFU, SFUCtl words

	// warps covers every warp up to the machine's dirty high-water mark
	// (at least the block's live warps). Warps beyond len(warps) are in
	// the canonical empty-warp state, which Restore re-establishes
	// without storing or copying their 8 KiB register rows — the
	// dominant cost of a snapshot cycle at MaxWarps rows.
	warps  []warpState
	global []uint32
	shared []uint32

	prog *kasm.Program // shared, immutable
	imem []isa.Word    // shared, immutable

	grid, block int
	curBlock    int
	nwarps      int
	cycle       uint64
	maxCycles   uint64
	blockDone   bool
}

// warpState is one warp's behavioural memory: register-file row,
// predicate file, SIMT stack and top-of-stack active mask.
type warpState struct {
	regs  [isa.NumRegs][WarpSize]uint32
	preds [isa.NumPreds]uint32
	stack []simtEntry
	mask  uint32
}

// Cycle returns the cycle count at which the snapshot was captured:
// exactly Cycle() cycles have been executed, and the fault scheduled for
// any cycle >= Cycle() has not fired yet.
func (s *Snapshot) Cycle() uint64 { return s.cycle }

// moduleStates lists the six module states in Snapshot.mods order.
func (m *Machine) moduleStates() [6]*State {
	return [6]*State{m.Sched, m.Pipe, m.FP32, m.INT, m.SFU, m.SFUCtl}
}

// Snapshot captures the machine's complete mutable state. It must be
// called between cycles (Run invokes its checkpoint sink at cycle
// boundaries); the program and instruction memory are shared by
// reference, everything else is deep-copied.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		warps:     make([]warpState, m.hiDirty),
		global:    append([]uint32(nil), m.global...),
		shared:    append([]uint32(nil), m.shared...),
		prog:      m.prog,
		imem:      m.imem,
		grid:      m.grid,
		block:     m.block,
		curBlock:  m.curBlock,
		nwarps:    m.nwarps,
		cycle:     m.cycle,
		maxCycles: m.maxCycles,
		blockDone: m.blockDone,
	}
	for i, st := range m.moduleStates() {
		s.mods[i] = append([]uint64(nil), st.words...)
	}
	for w := range s.warps {
		ws := &s.warps[w]
		ws.regs = m.regs[w]
		ws.preds = m.preds[w]
		ws.stack = append([]simtEntry(nil), m.stacks[w]...)
		ws.mask = m.warpMask[w]
	}
	return s
}

// Restore overwrites the machine's state with a snapshot's. Any fault
// scheduled with Inject stays pending, so the usual sequence is
// Inject followed by RunFrom. Global and shared memory are copied into
// machine-owned slices: restoring never aliases the snapshot, and the
// snapshot stays valid for further restores.
func (m *Machine) Restore(s *Snapshot) {
	for i, st := range m.moduleStates() {
		copy(st.words, s.mods[i])
	}
	for w := range s.warps {
		ws := &s.warps[w]
		m.regs[w] = ws.regs
		m.preds[w] = ws.preds
		m.stacks[w] = append(m.stacks[w][:0], ws.stack...)
		m.warpMask[w] = ws.mask
	}
	// Warps beyond the snapshot's high-water mark are canonical-empty in
	// its implied state; reset only the ones this machine dirtied.
	for w := len(s.warps); w < m.hiDirty; w++ {
		m.resetWarp(w)
	}
	m.hiDirty = len(s.warps)
	// Run aliases the caller's global slice; never restore into it.
	if !m.globalOwned || cap(m.global) < len(s.global) {
		m.global = make([]uint32, len(s.global))
		m.globalOwned = true
	}
	m.global = m.global[:len(s.global)]
	copy(m.global, s.global)
	if cap(m.shared) < len(s.shared) {
		m.shared = make([]uint32, len(s.shared))
	}
	m.shared = m.shared[:len(s.shared)]
	copy(m.shared, s.shared)
	m.prog = s.prog
	m.imem = s.imem
	m.grid, m.block = s.grid, s.block
	m.curBlock = s.curBlock
	m.nwarps = s.nwarps
	m.cycle = s.cycle
	m.maxCycles = s.maxCycles
	m.blockDone = s.blockDone
	m.err = nil
	m.injected = false
	m.machineDone = false
}

// RunFrom restores a snapshot and resumes execution until completion,
// DUE, or the cycle budget expires. maxCycles is the same absolute budget
// Run takes (the cycle counter resumes from Snapshot.Cycle(), it is not
// reset). A fault scheduled with Inject fires when the resumed run
// reaches its cycle; faults scheduled before the snapshot's cycle never
// fire — callers must pick a snapshot at or before the injection cycle.
func (m *Machine) RunFrom(s *Snapshot, maxCycles uint64) error {
	m.Restore(s)
	m.maxCycles = maxCycles
	return m.runLoop(0, nil, nil)
}

// RunFromPruned is RunFrom with golden-reconvergence pruning: at every
// cycle boundary that is a multiple of every, once any injected fault
// has fired, golden(cycle) may supply the fault-free run's snapshot for
// that exact cycle. If the machine's state is bit-identical to it, the
// remaining cycles are guaranteed to replay the golden tail — the run
// stops there and RunFromPruned reports pruned=true, leaving mid-run
// state in the machine. Callers then take the golden run's outputs,
// cycle count and nil error as the (bit-exact) result. Transient faults
// are usually overwritten within a few pipeline stages, so most Masked
// injections prune at the first boundary after the fault.
func (m *Machine) RunFromPruned(s *Snapshot, maxCycles, every uint64, golden func(uint64) *Snapshot) (pruned bool, err error) {
	m.Restore(s)
	m.maxCycles = maxCycles
	err = m.runLoop(every, nil, golden)
	return m.pruned, err
}

// matches reports whether the machine's entire mutable state is
// bit-identical to the snapshot's: same cycle and block progress, same
// module flip-flops, same per-warp memories, same global and shared
// images. A true result means the remaining run deterministically
// replays the snapshot's run. A conservative false (e.g. differing
// dirty high-water marks) is always safe — it only costs the prune.
func (m *Machine) matches(s *Snapshot) bool {
	if m.cycle != s.cycle || m.curBlock != s.curBlock || m.blockDone != s.blockDone ||
		m.nwarps != s.nwarps || m.hiDirty != len(s.warps) {
		return false
	}
	for i, st := range m.moduleStates() {
		if !wordsEqual(st.words, s.mods[i]) {
			return false
		}
	}
	for w := range s.warps {
		ws := &s.warps[w]
		if m.warpMask[w] != ws.mask || m.preds[w] != ws.preds || m.regs[w] != ws.regs {
			return false
		}
		if len(m.stacks[w]) != len(ws.stack) {
			return false
		}
		for i, e := range ws.stack {
			if m.stacks[w][i] != e {
				return false
			}
		}
	}
	return memEqual(m.shared, s.shared) && memEqual(m.global, s.global)
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

func memEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Global exposes the machine's global-memory image, which RunFrom
// restores from the snapshot and the resumed run mutates in place.
// Campaign classifiers compare it against the golden image.
func (m *Machine) Global() []uint32 { return m.global }
